package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets × 2 ways × 64B lines = 512 bytes, easy to reason about.
	return New(Config{Name: "t", SizeBytes: 512, LineSize: 64, Ways: 2, HitLatency: 1})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x103f, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x1040, false); r.Hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (stride = sets*line = 256).
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) || !c.Probe(d) {
		t.Fatal("wrong line evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestDirtyWriteBack(t *testing.T) {
	c := small()
	c.Access(0x0000, true) // dirty
	c.Access(0x0100, false)
	res := c.Access(0x0200, false) // evicts dirty 0x0000
	if !res.WriteBack {
		t.Fatal("dirty eviction produced no write-back")
	}
	if res.WriteBackAddr != 0x0000 {
		t.Errorf("write-back addr = %#x, want 0", res.WriteBackAddr)
	}
	if c.Stats.WriteBacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.WriteBacks)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	c := small()
	c.Access(0x0000, false)
	c.Access(0x0100, false)
	if res := c.Access(0x0200, false); res.WriteBack {
		t.Fatal("clean eviction produced a write-back")
	}
}

func TestStatsInvariants(t *testing.T) {
	// Property: refills <= accesses; read+write accesses == accesses.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(L1DConfig)
		for i := 0; i < 2000; i++ {
			c.Access(rng.Uint64()%(1<<20), rng.Intn(2) == 0)
		}
		s := c.Stats
		return s.Refills <= s.Accesses &&
			s.ReadAcc+s.WriteAcc == s.Accesses &&
			s.ReadMiss+s.WriteMiss == s.Refills &&
			s.WriteBacks <= s.Refills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(L1DConfig) // 64 KiB
	// Touch 32 KiB twice; the second pass must be all hits.
	for addr := uint64(0); addr < 32<<10; addr += 64 {
		c.Access(addr, false)
	}
	before := c.Stats.Refills
	for addr := uint64(0); addr < 32<<10; addr += 64 {
		if r := c.Access(addr, false); !r.Hit {
			t.Fatalf("capacity miss at %#x for in-cache working set", addr)
		}
	}
	if c.Stats.Refills != before {
		t.Fatal("refills counted on hits")
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	c := New(L1DConfig)
	// Stream 1 MiB repeatedly: with LRU and a 64 KiB cache every access misses.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 1<<20; addr += 64 {
			c.Access(addr, false)
		}
	}
	if mr := c.Stats.MissRate(); mr < 0.99 {
		t.Errorf("streaming over-capacity miss rate = %.3f, want ~1", mr)
	}
}

func TestMorelloGeometries(t *testing.T) {
	for _, cfg := range []Config{L1IConfig, L1DConfig, L2Config, LLCConfig} {
		c := New(cfg)
		sets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
		if c.numSets != sets {
			t.Errorf("%s: sets = %d want %d", cfg.Name, c.numSets, sets)
		}
	}
}

func TestInvalidateAll(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.InvalidateAll()
	if c.Probe(0x40) {
		t.Fatal("line survived invalidation")
	}
}

func TestMissRateZeroDivision(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.ReadMissRate() != 0 {
		t.Fatal("zero-access miss rate not zero")
	}
}

// refCache is the pre-fast-path reference model: plain hit scan followed
// by a separate victim scan. The MRU fast path and the folded single-pass
// scan in Cache.Access must stay bit-identical to it.
type refCache struct {
	sets    [][]line
	numSets int
	lineSz  uint64
	seq     uint64
	stats   Stats
}

func newRef(cfg Config) *refCache {
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	sets := make([][]line, numSets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &refCache{sets: sets, numSets: numSets, lineSz: uint64(cfg.LineSize)}
}

func (c *refCache) access(addr uint64, write bool) Result {
	c.stats.Accesses++
	if write {
		c.stats.WriteAcc++
	} else {
		c.stats.ReadAcc++
	}
	lineAddr := addr / c.lineSz
	set, tag := int(lineAddr%uint64(c.numSets)), lineAddr/uint64(c.numSets)
	c.seq++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.lru = c.seq
			if write {
				l.dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.stats.Refills++
	if write {
		c.stats.WriteMiss++
	} else {
		c.stats.ReadMiss++
	}
	victim := 0
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if !l.valid {
			victim = i
			break
		}
		if l.lru < c.sets[set][victim].lru {
			victim = i
		}
	}
	v := &c.sets[set][victim]
	res := Result{}
	if v.valid && v.dirty {
		c.stats.WriteBacks++
		res.WriteBack = true
		res.WriteBackAddr = (v.tag*uint64(c.numSets) + uint64(set)) * c.lineSz
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.seq}
	return res
}

// TestAccessMatchesReferenceModel drives the optimized cache and the
// reference model with identical randomized access streams (mixing tight
// line reuse, set conflicts and streaming) and requires identical results,
// stats and final line state on every step.
func TestAccessMatchesReferenceModel(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "tiny", SizeBytes: 512, LineSize: 64, Ways: 2, HitLatency: 1},
		L1DConfig,
		L2Config,
	} {
		rng := rand.New(rand.NewSource(42))
		opt := New(cfg)
		ref := newRef(cfg)
		var last uint64
		for i := 0; i < 20000; i++ {
			var addr uint64
			switch rng.Intn(4) {
			case 0: // reuse the previous line (MRU fast-path territory)
				addr = last + uint64(rng.Intn(64))
			case 1: // conflict within one set
				addr = uint64(rng.Intn(8)) * uint64(cfg.LineSize) * uint64(opt.numSets)
			case 2: // stream
				addr = uint64(i) * 64
			default:
				addr = rng.Uint64() % (1 << 22)
			}
			last = addr
			write := rng.Intn(3) == 0
			got := opt.Access(addr, write)
			want := ref.access(addr, write)
			if got != want {
				t.Fatalf("%s step %d addr=%#x write=%v: got %+v want %+v", cfg.Name, i, addr, write, got, want)
			}
		}
		if opt.Stats != ref.stats {
			t.Fatalf("%s: stats diverged: got %+v want %+v", cfg.Name, opt.Stats, ref.stats)
		}
		for s := range ref.sets {
			for w := range ref.sets[s] {
				if opt.sets[s][w] != ref.sets[s][w] {
					t.Fatalf("%s: line state diverged at set %d way %d: got %+v want %+v",
						cfg.Name, s, w, opt.sets[s][w], ref.sets[s][w])
				}
			}
		}
	}
}

// TestMRUHintSurvivesInvalidate checks that a stale MRU hint after a flush
// can never produce a false hit.
func TestMRUHintSurvivesInvalidate(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	if !c.Access(0x40, false).Hit {
		t.Fatal("warm access missed")
	}
	c.InvalidateAll()
	if c.Access(0x40, false).Hit {
		t.Fatal("stale MRU hint hit after InvalidateAll")
	}
}

// TestInvalidateAllCountsDirtyWriteBacks reproduces the lost-write-back
// bug: a write-back cache cannot silently discard dirty lines on a flush,
// so InvalidateAll must report each dirty line as a write-back and account
// for it in the statistics the PMU model reads.
func TestInvalidateAllCountsDirtyWriteBacks(t *testing.T) {
	c := small()           // 4 sets x 2 ways
	c.Access(0x000, true)  // dirty
	c.Access(0x040, true)  // dirty
	c.Access(0x080, false) // clean
	before := c.Stats.WriteBacks
	if got := c.InvalidateAll(); got != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", got)
	}
	if c.Stats.WriteBacks != before+2 {
		t.Fatalf("Stats.WriteBacks = %d, want %d", c.Stats.WriteBacks, before+2)
	}
	// Everything is gone and clean: a second flush writes back nothing.
	if got := c.InvalidateAll(); got != 0 {
		t.Fatalf("second flush wrote back %d lines, want 0", got)
	}
}
