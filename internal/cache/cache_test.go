package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets × 2 ways × 64B lines = 512 bytes, easy to reason about.
	return New(Config{Name: "t", SizeBytes: 512, LineSize: 64, Ways: 2, HitLatency: 1})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x103f, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x1040, false); r.Hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (stride = sets*line = 256).
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) || !c.Probe(d) {
		t.Fatal("wrong line evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestDirtyWriteBack(t *testing.T) {
	c := small()
	c.Access(0x0000, true) // dirty
	c.Access(0x0100, false)
	res := c.Access(0x0200, false) // evicts dirty 0x0000
	if !res.WriteBack {
		t.Fatal("dirty eviction produced no write-back")
	}
	if res.WriteBackAddr != 0x0000 {
		t.Errorf("write-back addr = %#x, want 0", res.WriteBackAddr)
	}
	if c.Stats.WriteBacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.WriteBacks)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	c := small()
	c.Access(0x0000, false)
	c.Access(0x0100, false)
	if res := c.Access(0x0200, false); res.WriteBack {
		t.Fatal("clean eviction produced a write-back")
	}
}

func TestStatsInvariants(t *testing.T) {
	// Property: refills <= accesses; read+write accesses == accesses.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(L1DConfig)
		for i := 0; i < 2000; i++ {
			c.Access(rng.Uint64()%(1<<20), rng.Intn(2) == 0)
		}
		s := c.Stats
		return s.Refills <= s.Accesses &&
			s.ReadAcc+s.WriteAcc == s.Accesses &&
			s.ReadMiss+s.WriteMiss == s.Refills &&
			s.WriteBacks <= s.Refills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(L1DConfig) // 64 KiB
	// Touch 32 KiB twice; the second pass must be all hits.
	for addr := uint64(0); addr < 32<<10; addr += 64 {
		c.Access(addr, false)
	}
	before := c.Stats.Refills
	for addr := uint64(0); addr < 32<<10; addr += 64 {
		if r := c.Access(addr, false); !r.Hit {
			t.Fatalf("capacity miss at %#x for in-cache working set", addr)
		}
	}
	if c.Stats.Refills != before {
		t.Fatal("refills counted on hits")
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	c := New(L1DConfig)
	// Stream 1 MiB repeatedly: with LRU and a 64 KiB cache every access misses.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 1<<20; addr += 64 {
			c.Access(addr, false)
		}
	}
	if mr := c.Stats.MissRate(); mr < 0.99 {
		t.Errorf("streaming over-capacity miss rate = %.3f, want ~1", mr)
	}
}

func TestMorelloGeometries(t *testing.T) {
	for _, cfg := range []Config{L1IConfig, L1DConfig, L2Config, LLCConfig} {
		c := New(cfg)
		sets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
		if c.numSets != sets {
			t.Errorf("%s: sets = %d want %d", cfg.Name, c.numSets, sets)
		}
	}
}

func TestInvalidateAll(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.InvalidateAll()
	if c.Probe(0x40) {
		t.Fatal("line survived invalidation")
	}
}

func TestMissRateZeroDivision(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.ReadMissRate() != 0 {
		t.Fatal("zero-access miss rate not zero")
	}
}
