package trace_test

import (
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/trace"
	"cherisim/internal/workloads"
)

func TestMachineTracingEndToEnd(t *testing.T) {
	w, err := workloads.ByName("520.omnetpp_r")
	if err != nil {
		t.Fatal(err)
	}
	analyse := func(a abi.ABI) trace.Analysis {
		cfg := core.DefaultConfig(a)
		m := core.NewMachine(cfg)
		m.Tracer = trace.New(200000)
		if err := m.Run(func(m *core.Machine) { w.Run(m, 1) }); err != nil {
			t.Fatal(err)
		}
		if m.Tracer.Total() == 0 {
			t.Fatal("no accesses traced")
		}
		return trace.Analyze(m.Tracer.Events())
	}
	hy := analyse(abi.Hybrid)
	pc := analyse(abi.Purecap)

	// The paper's §4.7 mechanism, observed directly in the trace: purecap
	// touches a larger footprint and chases pointers where hybrid chased
	// integers.
	if pc.PointerChaseShare <= hy.PointerChaseShare {
		t.Errorf("pointer-chase share: purecap %.2f <= hybrid %.2f", pc.PointerChaseShare, hy.PointerChaseShare)
	}
	if pc.FootprintBytes <= hy.FootprintBytes {
		t.Errorf("footprint: purecap %d <= hybrid %d", pc.FootprintBytes, hy.FootprintBytes)
	}
}

func TestLlamaTraceIsSequential(t *testing.T) {
	// §5: "sequential reads dominate its access patterns".
	w, err := workloads.ByName("llama-matmul")
	if err != nil {
		t.Fatal(err)
	}
	m := core.New(abi.Purecap)
	m.Tracer = trace.New(100000)
	if err := m.Run(func(m *core.Machine) { w.Run(m, 1) }); err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(m.Tracer.Events())
	if a.SequentialShare < 0.3 {
		t.Errorf("llama sequential share = %.2f, expected stream-dominated", a.SequentialShare)
	}
}
