package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Analysis summarises an access stream's locality character.
type Analysis struct {
	// Accesses is the analysed event count.
	Accesses int
	// UniqueLines is the distinct 64-byte-line footprint.
	UniqueLines int
	// FootprintBytes is UniqueLines * 64.
	FootprintBytes uint64
	// SequentialShare is the fraction of accesses that continue one of
	// several concurrently-tracked sequential line streams (interleaved
	// streams, as in matrix kernels, still count — mirroring how hardware
	// prefetchers see them).
	SequentialShare float64
	// PointerChaseShare is the fraction of capability loads among loads —
	// a locality-independent measure of pointer intensity.
	PointerChaseShare float64
	// ReuseP50/P90 are line reuse-distance percentiles (distinct lines
	// touched between consecutive uses of the same line); -1 when a line
	// is never reused. Reuse distance below a cache's line capacity
	// predicts a hit in that cache.
	ReuseP50, ReuseP90 int
	// ColdShare is the fraction of accesses that touch a line for the
	// first time (compulsory misses).
	ColdShare float64
	// TopStrides maps the most common successive-address deltas to their
	// share of accesses.
	TopStrides []StrideShare
}

// StrideShare is one stride's share of the access stream.
type StrideShare struct {
	Stride int64
	Share  float64
}

// Analyze computes the locality summary of the retained events.
func Analyze(events []Event) Analysis {
	var a Analysis
	a.Accesses = len(events)
	if len(events) == 0 {
		return a
	}

	// Reuse distance via an ordered last-use structure: approximate stack
	// distance using per-line last-access index and a Fenwick tree over
	// "still-resident" markers.
	n := len(events)
	lastUse := make(map[uint64]int, 1024)
	alive := newFenwick(n + 1)
	var distances []int

	var prevAddr uint64
	var heads [8]uint64
	headNext := 0
	seqCount := 0
	strides := map[int64]int{}
	var loads, capLoads uint64

	for i, e := range events {
		line := e.Addr >> 6
		if i > 0 {
			strides[int64(e.Addr)-int64(prevAddr)]++
		}
		prevAddr = e.Addr
		matched := false
		for h := range heads {
			if line == heads[h] || line == heads[h]+1 {
				heads[h] = line
				matched = true
				break
			}
		}
		if matched {
			if i > 0 {
				seqCount++
			}
		} else {
			heads[headNext] = line
			headNext = (headNext + 1) % len(heads)
		}

		switch e.Kind {
		case KindLoad:
			loads++
		case KindCapLoad:
			loads++
			capLoads++
		}

		if j, seen := lastUse[line]; seen {
			// Distinct lines touched since the previous use of this line.
			d := alive.sum(j+1, i)
			distances = append(distances, d)
			alive.add(j, -1)
		}
		lastUse[line] = i
		alive.add(i, 1)
	}

	a.UniqueLines = len(lastUse)
	a.FootprintBytes = uint64(a.UniqueLines) * 64
	if n > 1 {
		a.SequentialShare = float64(seqCount) / float64(n-1)
	}
	if loads > 0 {
		a.PointerChaseShare = float64(capLoads) / float64(loads)
	}
	a.ColdShare = float64(a.UniqueLines) / float64(n)

	if len(distances) > 0 {
		sort.Ints(distances)
		a.ReuseP50 = distances[len(distances)/2]
		a.ReuseP90 = distances[int(math.Min(float64(len(distances)-1), float64(len(distances))*0.9))]
	} else {
		a.ReuseP50, a.ReuseP90 = -1, -1
	}

	type sv struct {
		stride int64
		count  int
	}
	var svs []sv
	for s, c := range strides {
		svs = append(svs, sv{s, c})
	}
	sort.Slice(svs, func(i, j int) bool {
		if svs[i].count != svs[j].count {
			return svs[i].count > svs[j].count
		}
		return svs[i].stride < svs[j].stride
	})
	for i, s := range svs {
		if i == 4 {
			break
		}
		a.TopStrides = append(a.TopStrides, StrideShare{Stride: s.stride, Share: float64(s.count) / float64(n-1)})
	}
	return a
}

// String renders the analysis as a short report.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses            %d\n", a.Accesses)
	fmt.Fprintf(&b, "unique 64B lines    %d (%.1f KiB footprint)\n", a.UniqueLines, float64(a.FootprintBytes)/1024)
	fmt.Fprintf(&b, "sequential share    %.1f%%\n", a.SequentialShare*100)
	fmt.Fprintf(&b, "pointer-chase share %.1f%% of loads\n", a.PointerChaseShare*100)
	fmt.Fprintf(&b, "cold-miss share     %.1f%%\n", a.ColdShare*100)
	fmt.Fprintf(&b, "reuse distance      p50=%d p90=%d lines\n", a.ReuseP50, a.ReuseP90)
	for _, s := range a.TopStrides {
		fmt.Fprintf(&b, "stride %+8d     %.1f%%\n", s.Stride, s.Share*100)
	}
	return b.String()
}

// fenwick is a binary indexed tree over int counts.
type fenwick struct {
	t []int
}

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int, n+1)} }

func (f *fenwick) add(i, v int) {
	for i++; i < len(f.t); i += i & -i {
		f.t[i] += v
	}
}

func (f *fenwick) prefix(i int) int {
	s := 0
	for i++; i > 0; i -= i & -i {
		s += f.t[i]
	}
	return s
}

// sum returns the count in [lo, hi] inclusive.
func (f *fenwick) sum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo-1)
}
