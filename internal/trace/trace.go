// Package trace records the simulated machine's memory-access stream and
// analyses it: reuse distances, stride patterns, and footprint growth.
// This is the analysis the paper performs qualitatively ("sequential reads
// dominate its access patterns" for LLaMA.cpp in §5; "weaker locality"
// for purecap in §4.7) made quantitative: tracing the same workload under
// hybrid and purecap shows exactly how 16-byte pointers dilute spatial
// locality.
package trace

// Kind classifies one traced event.
type Kind uint8

// Event kinds.
const (
	// KindLoad is a data load.
	KindLoad Kind = iota
	// KindStore is a data store.
	KindStore
	// KindCapLoad is a capability (pointer) load.
	KindCapLoad
	// KindCapStore is a capability (pointer) store.
	KindCapStore
	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{"load", "store", "cap-load", "cap-store"}

// String returns the kind's name.
func (k Kind) String() string {
	if k >= NumKinds {
		return "?"
	}
	return kindNames[k]
}

// Event is one memory access.
type Event struct {
	// Seq is the access's position in program order.
	Seq uint64
	// Kind classifies the access.
	Kind Kind
	// Addr is the virtual address.
	Addr uint64
	// Size is the access width in bytes.
	Size uint32
	// Level is the hierarchy level that served the access
	// (0=L1, 1=L2, 2=LLC, 3=DRAM).
	Level uint8
}

// Collector accumulates the access stream. A nil *Collector is a valid
// no-op sink, so the machine's hot path pays only a nil check when tracing
// is off.
type Collector struct {
	// Max bounds the retained event count; 0 keeps everything. When the
	// bound is hit, recording stops (head sampling) but aggregate
	// statistics keep accumulating.
	Max int

	events  []Event
	seq     uint64
	kinds   [NumKinds]uint64
	levels  [4]uint64
	dropped uint64
}

// New creates a collector retaining at most max events (0 = unbounded).
func New(max int) *Collector { return &Collector{Max: max} }

// Record appends one access. Safe to call on a nil collector.
func (c *Collector) Record(kind Kind, addr uint64, size uint32, level uint8) {
	if c == nil {
		return
	}
	c.seq++
	c.kinds[kind]++
	if level < 4 {
		c.levels[level]++
	}
	if c.Max > 0 && len(c.events) >= c.Max {
		c.dropped++
		return
	}
	c.events = append(c.events, Event{Seq: c.seq, Kind: kind, Addr: addr, Size: size, Level: level})
}

// Events returns the retained event stream.
func (c *Collector) Events() []Event { return c.events }

// Total returns the number of recorded accesses (including dropped).
func (c *Collector) Total() uint64 { return c.seq }

// Dropped returns how many accesses exceeded the retention bound.
func (c *Collector) Dropped() uint64 { return c.dropped }

// KindCount returns the total accesses of kind k.
func (c *Collector) KindCount(k Kind) uint64 { return c.kinds[k] }

// LevelCount returns the accesses served by hierarchy level l (0..3).
func (c *Collector) LevelCount(l int) uint64 {
	if l < 0 || l > 3 {
		return 0
	}
	return c.levels[l]
}
