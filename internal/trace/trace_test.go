package trace

import (
	"strings"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Record(KindLoad, 0x1000, 8, 0) // must not panic
}

func TestCollectorBounds(t *testing.T) {
	c := New(3)
	for i := 0; i < 10; i++ {
		c.Record(KindLoad, uint64(i*64), 8, 0)
	}
	if len(c.Events()) != 3 {
		t.Errorf("retained %d events, want 3", len(c.Events()))
	}
	if c.Total() != 10 || c.Dropped() != 7 {
		t.Errorf("total/dropped = %d/%d", c.Total(), c.Dropped())
	}
	if c.KindCount(KindLoad) != 10 {
		t.Error("aggregate counts must keep accumulating past the bound")
	}
}

func TestAnalyzeSequentialStream(t *testing.T) {
	c := New(0)
	for i := 0; i < 1000; i++ {
		c.Record(KindLoad, uint64(i*8), 8, 0)
	}
	a := Analyze(c.Events())
	if a.SequentialShare < 0.95 {
		t.Errorf("sequential stream share = %.2f", a.SequentialShare)
	}
	if len(a.TopStrides) == 0 || a.TopStrides[0].Stride != 8 {
		t.Errorf("top stride = %+v", a.TopStrides)
	}
	if a.UniqueLines != 125 {
		t.Errorf("unique lines = %d, want 125", a.UniqueLines)
	}
}

func TestAnalyzeReuseDistance(t *testing.T) {
	// Access lines 0..9 cyclically: reuse distance is exactly 9 for every
	// reuse (nine distinct other lines between consecutive uses).
	c := New(0)
	for pass := 0; pass < 20; pass++ {
		for l := 0; l < 10; l++ {
			c.Record(KindLoad, uint64(l*64), 8, 0)
		}
	}
	a := Analyze(c.Events())
	if a.ReuseP50 != 9 || a.ReuseP90 != 9 {
		t.Errorf("reuse p50/p90 = %d/%d, want 9/9", a.ReuseP50, a.ReuseP90)
	}
}

func TestAnalyzeNoReuse(t *testing.T) {
	c := New(0)
	for i := 0; i < 50; i++ {
		c.Record(KindStore, uint64(i)*128, 8, 0)
	}
	a := Analyze(c.Events())
	if a.ReuseP50 != -1 {
		t.Errorf("reuse on a no-reuse stream: %d", a.ReuseP50)
	}
	if a.ColdShare != 1 {
		t.Errorf("cold share = %.2f, want 1", a.ColdShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Accesses != 0 {
		t.Error("empty analysis nonzero")
	}
}

func TestPointerChaseShare(t *testing.T) {
	c := New(0)
	for i := 0; i < 60; i++ {
		if i%3 == 0 {
			c.Record(KindCapLoad, uint64(i*64), 16, 0)
		} else {
			c.Record(KindLoad, uint64(i*64), 8, 0)
		}
	}
	a := Analyze(c.Events())
	if a.PointerChaseShare < 0.32 || a.PointerChaseShare > 0.35 {
		t.Errorf("pointer-chase share = %.3f, want ~1/3", a.PointerChaseShare)
	}
}

func TestAnalysisString(t *testing.T) {
	c := New(0)
	c.Record(KindLoad, 0, 8, 0)
	c.Record(KindLoad, 64, 8, 1)
	out := Analyze(c.Events()).String()
	for _, want := range []string{"accesses", "unique 64B lines", "reuse distance", "stride"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
