package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cherisim/internal/experiments"
	"cherisim/internal/resultstore"
	"cherisim/internal/telemetry"
)

// bootService starts a campaign service over a cache-fronted store and a
// loopback HTTP server.
func bootService(t *testing.T, dir string) (*Service, *httptest.Server, *resultstore.Store) {
	t.Helper()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.EnableAdmissionCache(resultstore.DefaultCacheBytes)
	svc := New(Config{Store: store, Hub: telemetry.New(), Workers: 2, Runners: 1, QueueDepth: 4})
	svc.Start()
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts, store
}

// postCampaign submits a spec and decodes the 202 status.
func postCampaign(t *testing.T, ts *httptest.Server, spec string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitDone polls the status endpoint until the campaign completes.
func awaitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("campaign did not complete in time")
	return Status{}
}

// fetchResult GETs the rendered body.
func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestCampaignE2E is the tentpole acceptance test: boot the service on a
// loopback listener, submit a campaign, poll it to completion, and check
// the rendered body byte-identical against the in-process render the CLI
// performs. A warm resubmission must then be served entirely from the
// admission cache: zero simulations, zero disk reads, identical bytes.
func TestCampaignE2E(t *testing.T) {
	_, ts, _ := bootService(t, t.TempDir())

	cold := postCampaign(t, ts, `{"tenant":"e2e","experiments":["table1"]}`)
	if cold.State != StateQueued && cold.State != StateRunning {
		t.Fatalf("submitted state = %s", cold.State)
	}
	coldSt := awaitDone(t, ts, cold.ID)
	if len(coldSt.Failed) != 0 {
		t.Fatalf("cold campaign failed: %v", coldSt.Failed)
	}
	if coldSt.Sims == 0 || coldSt.Store.Writes == 0 {
		t.Errorf("cold campaign: sims = %d, writes = %d, want both > 0", coldSt.Sims, coldSt.Store.Writes)
	}
	body := fetchResult(t, ts, cold.ID)

	// Byte-identity against the render path cmd/experiments -all drives:
	// same experiments, fresh storeless session, same writer framing.
	exps, err := experiments.Select([]string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if failed := experiments.RenderSelected(experiments.NewSession(1), &want, exps, nil); len(failed) != 0 {
		t.Fatalf("reference render failed: %v", failed)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("campaign body (%d bytes) differs from the CLI render (%d bytes)", len(body), want.Len())
	}

	// Warm resubmission: served from the admission cache, not disk, not
	// the simulator.
	warm := postCampaign(t, ts, `{"tenant":"e2e","experiments":["table1"]}`)
	warmSt := awaitDone(t, ts, warm.ID)
	if warmSt.Sims != 0 {
		t.Errorf("warm campaign simulated %d times, want 0", warmSt.Sims)
	}
	if st := warmSt.Store; st.Misses != 0 || st.Hits != 0 || st.MemHits == 0 {
		t.Errorf("warm store delta = %+v, want 0 misses, 0 disk hits, > 0 mem hits", st)
	}
	if !bytes.Equal(fetchResult(t, ts, warm.ID), body) {
		t.Error("warm body differs from cold body")
	}
}

// TestHTTPBackpressure pins the 429 + Retry-After surface on a service
// whose runners were never started (so queued work cannot drain).
func TestHTTPBackpressure(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Store: store, Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	postCampaign(t, ts, `{"tenant":"bp","experiments":["table1"]}`)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"tenant":"bp","experiments":["table1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}

	// Client errors keep their 400 surface.
	bad, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"experiments":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid submit = %d, want 400", bad.StatusCode)
	}
}

// TestEventsFeed follows a campaign's SSE stream: history replays, the
// experiment progress event arrives, and the stream terminates on "done".
func TestEventsFeed(t *testing.T) {
	_, ts, _ := bootService(t, t.TempDir())
	st := postCampaign(t, ts, `{"tenant":"sse","experiments":["table1"]}`)

	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		kinds = append(kinds, eventLabel(ev))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"queued", "started", "experiment:table1", "done"}
	if !eq(kinds, want) {
		t.Errorf("event stream = %v, want %v", kinds, want)
	}

	resp404, err := http.Get(ts.URL + "/campaigns/zzz/events")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign events = %d, want 404", resp404.StatusCode)
	}
}

func eventLabel(ev Event) string {
	if ev.Kind == "experiment" {
		return fmt.Sprintf("experiment:%s", ev.Experiment)
	}
	return ev.Kind
}

// TestResultBeforeDone pins the not-yet-done result surface (409 + retry
// hint), using an unstarted service so the campaign provably stays queued.
func TestResultBeforeDone(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Store: store})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	st := postCampaign(t, ts, `{"experiments":["table1"]}`)
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("pending result = %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("pending result missing Retry-After")
	}
}
