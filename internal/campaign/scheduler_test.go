package campaign

import (
	"testing"

	"cherisim/internal/experiments"
)

// submit enqueues a minimal valid campaign for tenant on a not-yet-started
// service (submissions queue deterministically until Start).
func submit(t *testing.T, s *Service, tenant string) *Campaign {
	t.Helper()
	c, err := s.Submit(Spec{Tenant: tenant, Experiments: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// dispatchOrder drains the scheduler via next(), returning tenant order.
func dispatchOrder(s *Service) []string {
	var out []string
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := s.next(); c != nil; c = s.next() {
		out = append(out, c.Spec.Tenant)
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFairnessInterleavesTenants is the core fairness property: a tenant
// flooding the queue before another submits anything does not get served
// first-come-first-served — dispatch interleaves the tenants round-robin.
func TestFairnessInterleavesTenants(t *testing.T) {
	s := New(Config{QueueDepth: 16})
	for i := 0; i < 3; i++ {
		submit(t, s, "flood")
	}
	for i := 0; i < 2; i++ {
		submit(t, s, "small")
	}
	got := dispatchOrder(s)
	want := []string{"flood", "small", "flood", "small", "flood"}
	if !eq(got, want) {
		t.Errorf("dispatch order = %v, want %v", got, want)
	}
}

// TestFairnessWeights gives one tenant a weight of 2: it gets two
// dispatches per round to the other's one.
func TestFairnessWeights(t *testing.T) {
	s := New(Config{QueueDepth: 16, Weights: map[string]int{"heavy": 2}})
	for i := 0; i < 4; i++ {
		submit(t, s, "heavy")
	}
	for i := 0; i < 2; i++ {
		submit(t, s, "light")
	}
	got := dispatchOrder(s)
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light"}
	if !eq(got, want) {
		t.Errorf("dispatch order = %v, want %v", got, want)
	}
}

// TestFairnessSkipsIdleTenants ensures an empty queue neither blocks the
// scan nor hoards credit for later rounds.
func TestFairnessSkipsIdleTenants(t *testing.T) {
	s := New(Config{QueueDepth: 16, Weights: map[string]int{"a": 3}})
	submit(t, s, "a") // registers a, then drains
	submit(t, s, "b")
	if got := dispatchOrder(s); !eq(got, []string{"a", "b"}) {
		t.Fatalf("warmup order = %v", got)
	}
	// a's unused credit from the first round must not survive: with one
	// pending campaign it gets one dispatch, not a weight-3 monopoly slot
	// that stalls the scan on its empty queue.
	for i := 0; i < 3; i++ {
		submit(t, s, "b")
	}
	submit(t, s, "a")
	got := dispatchOrder(s)
	want := []string{"a", "b", "b", "b"}
	if !eq(got, want) {
		t.Errorf("dispatch order = %v, want %v", got, want)
	}
}

// TestBackpressureQueueDepth pins the ErrQueueFull contract: per-tenant
// bound, Retry hint >= 1, other tenants unaffected.
func TestBackpressureQueueDepth(t *testing.T) {
	s := New(Config{QueueDepth: 2, Workers: 2})
	submit(t, s, "t")
	submit(t, s, "t")
	_, err := s.Submit(Spec{Tenant: "t", Experiments: []string{"table1"}})
	full, ok := err.(*ErrQueueFull)
	if !ok {
		t.Fatalf("err = %v, want *ErrQueueFull", err)
	}
	if full.Tenant != "t" || full.Pending != 2 || full.Retry < 1 {
		t.Errorf("ErrQueueFull = %+v", full)
	}
	if _, err := s.Submit(Spec{Tenant: "other", Experiments: []string{"table1"}}); err != nil {
		t.Errorf("other tenant rejected: %v", err)
	}
}

// TestSubmitValidation pins the client-error surface.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{})
	cases := []Spec{
		{Experiments: []string{"no-such-experiment"}},
		{Scale: DefaultMaxScale + 1},
		{Tenant: "bad tenant name"},
		{Attacks: []string{"uaf"}},                                      // without selecting security
		{Topologies: []string{"mesh"}},                                  // without selecting scale
		{Experiments: []string{"scale"}, Cores: []int{0}},               // out of range
		{Experiments: []string{"scale"}, Topologies: []string{"torus"}}, // unknown kind
	}
	for _, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
	c, err := s.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec.Tenant != "default" || c.Spec.Scale != 1 {
		t.Errorf("defaults not applied: %+v", c.Spec)
	}
	if len(c.exps) != len(experiments.Renderable()) {
		t.Errorf("empty selection = %d experiments, want the -all set", len(c.exps))
	}
}

// TestParseWeights covers the -weights flag grammar.
func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("a=3, b=1")
	if err != nil || w["a"] != 3 || w["b"] != 1 {
		t.Errorf("ParseWeights = %v, %v", w, err)
	}
	for _, bad := range []string{"a", "a=0", "a=x", "=2"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q) accepted", bad)
		}
	}
	if w, err := ParseWeights(""); w != nil || err != nil {
		t.Errorf("ParseWeights(\"\") = %v, %v", w, err)
	}
}
