// Package campaign is the multi-tenant campaign service behind
// cmd/campaignd: it accepts campaign submissions over HTTP/JSON (the same
// workload/ABI/scale/experiment selections cmd/experiments exposes as
// flags), schedules them across one shared simulation-worker fleet with
// per-tenant weighted round-robin fairness and bounded-queue backpressure,
// streams per-run progress, and serves warm results through the result
// store's in-memory admission cache. A campaign's rendered body is
// byte-identical to the equivalent cmd/experiments invocation — the service
// adds scheduling and transport, never formatting.
package campaign

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"cherisim/internal/attacks"
	"cherisim/internal/experiments"
	"cherisim/internal/resultstore"
	"cherisim/internal/soc"
)

// DefaultMaxScale bounds the per-submission workload scale a tenant can
// request; a runaway scale would monopolise the shared fleet.
const DefaultMaxScale = 8

// Spec is one campaign submission: which experiments to render and the
// session shape to render them under. The zero value of every optional
// field means the cmd/experiments default.
type Spec struct {
	// Tenant names the submitting tenant; queueing and fairness are
	// per-tenant. Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Experiments lists experiment IDs (see experiments.Select); empty
	// selects the full -all set.
	Experiments []string `json:"experiments,omitempty"`
	// Scale is the workload scale factor (0 means 1; capped by the
	// service's MaxScale).
	Scale int `json:"scale,omitempty"`
	// Attacks restricts the security experiment's corpus (requires
	// selecting "security").
	Attacks []string `json:"attacks,omitempty"`
	// Topologies restricts the scale experiment's fabric sweep (requires
	// selecting "scale").
	Topologies []string `json:"topologies,omitempty"`
	// Cores overrides the scale experiment's core-count sweep (requires
	// selecting "scale").
	Cores []int `json:"cores,omitempty"`
}

// tenantRe bounds tenant names to a safe identifier set (they ride into
// queue maps, logs and response headers).
var tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// validate normalises the spec in place and resolves its experiment
// selection, mirroring cmd/experiments' flag validation: every error here
// is a client error (HTTP 400), reported before anything is queued.
func (sp *Spec) validate(maxScale int) ([]*experiments.Experiment, error) {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if !tenantRe.MatchString(sp.Tenant) {
		return nil, fmt.Errorf("campaign: invalid tenant %q (want %s)", sp.Tenant, tenantRe)
	}
	if sp.Scale == 0 {
		sp.Scale = 1
	}
	if sp.Scale < 1 || sp.Scale > maxScale {
		return nil, fmt.Errorf("campaign: scale %d outside [1, %d]", sp.Scale, maxScale)
	}
	exps, err := experiments.Select(sp.Experiments)
	if err != nil {
		return nil, err
	}
	selected := func(id string) bool {
		for _, e := range exps {
			if e.ID == id {
				return true
			}
		}
		return false
	}
	if len(sp.Attacks) > 0 {
		if !selected("security") {
			return nil, fmt.Errorf("campaign: attacks only apply to the security experiment (select it)")
		}
		if _, err := attacks.Select(sp.Attacks); err != nil {
			return nil, err
		}
	}
	if len(sp.Topologies) > 0 || len(sp.Cores) > 0 {
		if !selected("scale") {
			return nil, fmt.Errorf("campaign: topologies/cores only apply to the scale experiment (select it)")
		}
	}
	for i, tp := range sp.Topologies {
		kind, err := soc.ParseTopologyKind(tp)
		if err != nil {
			return nil, err
		}
		sp.Topologies[i] = kind
	}
	for _, n := range sp.Cores {
		if n < 1 || n > soc.MaxCores {
			return nil, fmt.Errorf("campaign: core count %d outside [1, %d]", n, soc.MaxCores)
		}
	}
	return exps, nil
}

// State is a campaign's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	// StateDone means the campaign rendered; individual experiments may
	// still have failed (degraded mode, like cmd/experiments -all).
	StateDone State = "done"
)

// Event is one progress record of a campaign's event feed.
type Event struct {
	Seq  int       `json:"seq"`
	At   time.Time `json:"at"`
	Kind string    `json:"kind"` // queued | started | experiment | done
	// Experiment is the finished experiment's ID (kind "experiment").
	Experiment string `json:"experiment,omitempty"`
	// Err carries the experiment's failure (degraded mode), if any.
	Err string `json:"err,omitempty"`
}

// Campaign is one submitted campaign and its live state. All fields behind
// mu; the result body is immutable once done is closed.
type Campaign struct {
	ID   string
	Spec Spec

	exps []*experiments.Experiment

	mu     sync.Mutex
	state  State
	events []Event
	wake   chan struct{} // closed and replaced on every event append

	done   chan struct{} // closed on completion; fields below final after
	body   []byte
	failed []experiments.RenderError
	sims   uint64
	store  resultstore.Stats // store-traffic delta over the campaign's run
}

func newCampaign(id string, spec Spec, exps []*experiments.Experiment) *Campaign {
	c := &Campaign{
		ID:    id,
		Spec:  spec,
		exps:  exps,
		state: StateQueued,
		wake:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	c.event(Event{Kind: "queued"})
	return c
}

// event appends one progress record and wakes every feed watcher.
func (c *Campaign) event(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev.Seq = len(c.events) + 1
	ev.At = time.Now().UTC()
	c.events = append(c.events, ev)
	close(c.wake)
	c.wake = make(chan struct{})
}

// eventsSince returns the events after seq plus a channel that closes when
// more arrive — the feed endpoint's poll primitive.
func (c *Campaign) eventsSince(seq int) ([]Event, <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events[seq:], c.wake
}

// State returns the campaign's current lifecycle phase.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

func (c *Campaign) setState(st State) {
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
}

// Done exposes the completion signal.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Result returns the rendered campaign body; false until done.
func (c *Campaign) Result() ([]byte, bool) {
	select {
	case <-c.done:
		return c.body, true
	default:
		return nil, false
	}
}

// Status is the JSON shape of GET /campaigns/{id}.
type Status struct {
	ID          string   `json:"id"`
	Tenant      string   `json:"tenant"`
	State       State    `json:"state"`
	Experiments []string `json:"experiments"`
	Scale       int      `json:"scale"`
	Events      int      `json:"events"`
	// Sims counts machine executions the campaign performed (0 for a fully
	// warm campaign served from the store).
	Sims uint64 `json:"sims"`
	// Store is the result-store traffic delta attributed to this campaign's
	// run (approximate when campaigns run concurrently — the counters are
	// fleet-wide).
	Store *resultstore.Stats `json:"store,omitempty"`
	// Failed lists experiments that failed in degraded mode, as "id: err".
	Failed []string `json:"failed,omitempty"`
}

// Status snapshots the campaign for the status endpoint.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	st := Status{
		ID:     c.ID,
		Tenant: c.Spec.Tenant,
		State:  c.state,
		Scale:  c.Spec.Scale,
		Events: len(c.events),
	}
	c.mu.Unlock()
	for _, e := range c.exps {
		st.Experiments = append(st.Experiments, e.ID)
	}
	select {
	case <-c.done:
		st.Sims = c.sims
		stats := c.store
		st.Store = &stats
		for _, f := range c.failed {
			st.Failed = append(st.Failed, fmt.Sprintf("%s: %v", f.ID, f.Err))
		}
	default:
	}
	return st
}

// ParseWeights parses a "tenant=weight,tenant=weight" fairness spec (the
// -weights flag of cmd/campaignd). Weights must be >= 1; unknown tenants
// simply pre-register their queue weight.
func ParseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for i, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("campaign: weights segment %d %q is not tenant=weight", i+1, part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("campaign: weight %q for tenant %s must be an integer >= 1", val, name)
		}
		out[name] = w
	}
	return out, nil
}
