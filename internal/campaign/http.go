package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"cherisim/internal/telemetry"
)

// Handler builds the service's HTTP API:
//
//	POST /campaigns               submit a Spec (202; 400 invalid; 429 full)
//	GET  /campaigns               list campaign statuses
//	GET  /campaigns/{id}          one campaign's status JSON
//	GET  /campaigns/{id}/result   the rendered body, byte-identical to the
//	                              equivalent cmd/experiments invocation
//	GET  /campaigns/{id}/events   SSE progress feed (?spans=1 interleaves
//	                              the fleet-wide telemetry span feed)
//
// Every other path falls through to the hub's ops endpoints (/metrics,
// /spans, /profiles, /healthz, /debug/pprof), so one listener serves both
// the API and its observability.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.Handle("/", telemetry.OpsHandler(s.cfg.Hub))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("campaign: bad submission: %w", err))
		return
	}
	c, err := s.Submit(spec)
	if err != nil {
		var full *ErrQueueFull
		switch {
		case errors.As(err, &full):
			w.Header().Set("Retry-After", strconv.Itoa(full.Retry))
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, c.Status())
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	statuses := []Status{}
	for _, c := range s.List() {
		statuses = append(statuses, c.Status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Service) campaignOf(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("campaign: unknown campaign %q", id))
	}
	return c, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaignOf(w, r); ok {
		writeJSON(w, http.StatusOK, c.Status())
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignOf(w, r)
	if !ok {
		return
	}
	body, done := c.Result()
	if !done {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusConflict, fmt.Errorf("campaign: %s is %s, not done", c.ID, c.State()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// handleEvents streams the campaign's progress feed as server-sent events:
// the full event history so far, then live events until the campaign is
// done (the "done" event is always the last). With ?spans=1 the fleet-wide
// telemetry span feed is interleaved as "span" events — fleet-wide because
// the hub is shared across campaigns; the progress events are what is
// campaign-scoped.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignOf(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var spanFeed <-chan telemetry.SpanRecord
	if r.URL.Query().Get("spans") == "1" && s.cfg.Hub != nil {
		feed, cancel := s.cfg.Hub.Spans.Subscribe(0)
		defer cancel()
		spanFeed = feed
	}

	emit := func(kind string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	seen := 0
	for {
		evs, wake := c.eventsSince(seen)
		for _, ev := range evs {
			if !emit("progress", ev) {
				return
			}
			seen++
			if ev.Kind == "done" {
				return
			}
		}
		select {
		case <-wake:
		case rec, ok := <-spanFeed:
			if !ok {
				spanFeed = nil
				continue
			}
			if !emit("span", rec) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}
