package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"cherisim/internal/experiments"
	"cherisim/internal/resultstore"
	"cherisim/internal/telemetry"
)

// Config shapes a Service.
type Config struct {
	// Store is the shared persistent result store (required for warm
	// serving; nil disables persistence).
	Store *resultstore.Store
	// Hub receives the fleet's telemetry; nil keeps the engine inert.
	Hub *telemetry.Hub
	// Workers sizes the shared simulation-worker fleet every campaign's
	// session draws from (<= 0 means 1).
	Workers int
	// Runners bounds how many campaigns execute concurrently (<= 0 means
	// 1). Even concurrent campaigns share the Workers fleet — runners bound
	// pipeline overlap, not simulation parallelism.
	Runners int
	// QueueDepth bounds each tenant's pending campaigns; a submission over
	// the bound is rejected with ErrQueueFull (HTTP 429). <= 0 means 8.
	QueueDepth int
	// Weights assigns per-tenant fairness weights (>= 1); tenants not
	// listed weigh 1.
	Weights map[string]int
	// MaxScale caps Spec.Scale (<= 0 means DefaultMaxScale).
	MaxScale int
}

// ErrQueueFull rejects a submission over the tenant's queue bound; Retry
// is the backpressure hint (seconds) the HTTP layer serves as Retry-After.
type ErrQueueFull struct {
	Tenant  string
	Pending int
	Retry   int
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("campaign: tenant %s queue full (%d pending); retry in ~%ds", e.Tenant, e.Pending, e.Retry)
}

// ErrClosed rejects submissions to a closed service.
var ErrClosed = errors.New("campaign: service is shutting down")

// tenantQueue is one tenant's FIFO of queued campaigns plus its weighted
// round-robin bookkeeping. Tenants stay registered once seen (the ring is
// bounded by tenant count, not campaign count).
type tenantQueue struct {
	name    string
	weight  int
	credit  int // dispatches left in the current round
	pending []*Campaign
}

// Service schedules submitted campaigns across one shared worker fleet.
type Service struct {
	cfg   Config
	fleet chan int

	mu        sync.Mutex
	closed    bool
	seq       int
	tenants   map[string]*tenantQueue
	ring      []*tenantQueue // round-robin order = first-submission order
	cur       int            // ring position the next dispatch scan starts at
	campaigns map[string]*Campaign
	order     []string // campaign IDs in submission order

	wake chan struct{} // nudges an idle runner after a submission
	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a service; Start launches its runners.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxScale <= 0 {
		cfg.MaxScale = DefaultMaxScale
	}
	return &Service{
		cfg:       cfg,
		fleet:     experiments.NewFleet(cfg.Workers),
		tenants:   map[string]*tenantQueue{},
		campaigns: map[string]*Campaign{},
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
}

// Start launches the runner goroutines. Submissions before Start queue up
// (deterministically testable backpressure); submissions after Close fail.
func (s *Service) Start() {
	for i := 0; i < s.cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
}

// Close stops accepting submissions and waits for in-flight campaigns to
// finish. Queued-but-unstarted campaigns stay queued (their state never
// leaves "queued").
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Submit validates and enqueues one campaign, returning its record.
func (s *Service) Submit(spec Spec) (*Campaign, error) {
	exps, err := spec.validate(s.cfg.MaxScale)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := s.tenants[spec.Tenant]
	if t == nil {
		w := s.cfg.Weights[spec.Tenant]
		if w < 1 {
			w = 1
		}
		t = &tenantQueue{name: spec.Tenant, weight: w}
		s.tenants[spec.Tenant] = t
		s.ring = append(s.ring, t)
	}
	if len(t.pending) >= s.cfg.QueueDepth {
		return nil, &ErrQueueFull{
			Tenant:  spec.Tenant,
			Pending: len(t.pending),
			Retry:   1 + len(t.pending)/s.cfg.Workers,
		}
	}
	s.seq++
	c := newCampaign(fmt.Sprintf("c%d", s.seq), spec, exps)
	t.pending = append(t.pending, c)
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return c, nil
}

// Get returns a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List returns every campaign in submission order.
func (s *Service) List() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id])
	}
	return out
}

// next dispatches the next campaign under weighted round-robin deficit
// scheduling: each tenant spends up to `weight` dispatches per round before
// the pointer moves on, so a flood from one tenant interleaves with — never
// starves — the others, proportionally to their weights. Returns nil when
// every queue is empty. Callers must hold s.mu.
func (s *Service) next() *Campaign {
	for scanned := 0; scanned < len(s.ring); {
		t := s.ring[s.cur]
		if len(t.pending) == 0 {
			t.credit = 0
			s.cur = (s.cur + 1) % len(s.ring)
			scanned++
			continue
		}
		if t.credit == 0 {
			t.credit = t.weight // new round for this tenant
		}
		c := t.pending[0]
		t.pending = t.pending[1:]
		t.credit--
		if t.credit == 0 || len(t.pending) == 0 {
			t.credit = 0
			s.cur = (s.cur + 1) % len(s.ring)
		}
		return c
	}
	return nil
}

// runner is one campaign-execution loop.
func (s *Service) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		c := s.next()
		s.mu.Unlock()
		if c == nil {
			select {
			case <-s.wake:
				continue
			case <-s.stop:
				return
			}
		}
		s.run(c)
	}
}

// run executes one campaign on a fresh session over the shared fleet,
// store and hub. A fresh session per campaign keeps memory bounded and —
// crucially — routes every warm request through the store's admission
// cache instead of a process-lifetime singleflight map, so Sims and the
// store delta mean what they say.
func (s *Service) run(c *Campaign) {
	c.setState(StateRunning)
	c.event(Event{Kind: "started"})
	before := s.cfg.Store.Stats()

	sess := experiments.NewSession(c.Spec.Scale)
	sess.Store = s.cfg.Store
	sess.Telemetry = s.cfg.Hub
	sess.Attacks = c.Spec.Attacks
	sess.Topologies = c.Spec.Topologies
	sess.CoreCounts = c.Spec.Cores
	sess.SharePool(s.fleet)

	var body bytes.Buffer
	failed := experiments.RenderSelected(sess, &body, c.exps, func(e *experiments.Experiment, err error) {
		ev := Event{Kind: "experiment", Experiment: e.ID}
		if err != nil {
			ev.Err = err.Error()
		}
		c.event(ev)
	})
	sess.FinishTelemetry()

	after := s.cfg.Store.Stats()
	c.body = body.Bytes()
	c.failed = failed
	c.sims = sess.Executions()
	c.store = resultstore.Stats{
		Hits:        after.Hits - before.Hits,
		Misses:      after.Misses - before.Misses,
		Writes:      after.Writes - before.Writes,
		Corrupt:     after.Corrupt - before.Corrupt,
		MemHits:     after.MemHits - before.MemHits,
		Errors:      after.Errors - before.Errors,
		WriteErrors: after.WriteErrors - before.WriteErrors,
	}
	c.setState(StateDone)
	close(c.done)
	ev := Event{Kind: "done"}
	if len(failed) > 0 {
		ev.Err = fmt.Sprintf("%d of %d experiments failed", len(failed), len(c.exps))
	}
	c.event(ev)
}
