module cherisim

go 1.22
