package cherisim

import (
	"errors"
	"testing"
)

func TestRunQuickstartPath(t *testing.T) {
	res, err := Run("sqlite", Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Seconds <= 0 || res.Metrics.IPC <= 0 {
		t.Fatalf("empty result: %+v", res.Metrics)
	}
	if res.Topdown.BackendBound <= 0 {
		t.Error("no top-down data")
	}
	if res.HeapBytes == 0 {
		t.Error("no heap footprint")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run("not-a-benchmark", Hybrid, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestParseABI(t *testing.T) {
	a, err := ParseABI("benchmark")
	if err != nil || a != Benchmark {
		t.Fatalf("ParseABI = %v, %v", a, err)
	}
}

func TestWorkloadCatalogue(t *testing.T) {
	if len(Workloads()) != 20 {
		t.Errorf("catalogue has %d workloads", len(Workloads()))
	}
	w, err := WorkloadByName("519.lbm_r")
	if err != nil || w.Name != "519.lbm_r" {
		t.Fatalf("lookup failed: %v %v", w, err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	es := Experiments()
	if len(es) < 12 {
		t.Fatalf("only %d experiments registered", len(es))
	}
	e, err := ExperimentByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(NewExperimentSession(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("empty fig2 report")
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestRunConfigProjection(t *testing.T) {
	// The §5 projection path: a capability-aware predictor must not slow
	// anything down.
	base, err := Run("523.xalancbmk_r", Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Purecap)
	cfg.TracksPCCBounds = true
	improved, err := RunConfig("523.xalancbmk_r", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Metrics.Seconds >= base.Metrics.Seconds {
		t.Errorf("capability-aware predictor did not help: %.4f vs %.4f",
			improved.Metrics.Seconds, base.Metrics.Seconds)
	}
}

func TestDirectMachineUse(t *testing.T) {
	m := NewMachine(Purecap)
	m.Func("main", 512, 64)
	err := m.Run(func(m *Machine) {
		p := m.Alloc(64)
		m.Store(p, 7, 8)
		if v := m.Load(p, 8); v != 7 {
			t.Errorf("load = %d", v)
		}
		m.Load(p+4096, 8) // out of bounds: faults under purecap
	})
	if err == nil {
		t.Fatal("expected a capability fault")
	}
	var f interface{ Unwrap() error }
	if !errors.As(err, &f) {
		t.Errorf("fault not unwrappable: %v", err)
	}
}
