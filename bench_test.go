package cherisim

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, each regenerating the corresponding artefact on
// the simulated Morello platform, plus micro-benchmarks of the simulator's
// substrate components. Experiment benchmarks share one measurement
// session (as the paper shares one measurement campaign across analyses);
// the first benchmark to need a (workload, ABI) pair pays for its
// execution and the session caches it thereafter.
//
// Regenerate everything textually with:  go run ./cmd/experiments -all

import (
	"sync"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/branch"
	"cherisim/internal/cache"
	"cherisim/internal/cap"
	"cherisim/internal/core"
	"cherisim/internal/experiments"
	"cherisim/internal/tlb"
	"cherisim/internal/workloads"
)

var (
	sessOnce sync.Once
	sess     *experiments.Session
)

func session() *experiments.Session {
	sessOnce.Do(func() { sess = experiments.NewSession(1) })
	return sess
}

func benchExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	s := session()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable1Metrics regenerates Table 1 (PMU events and derived
// metrics, demonstrated on live counters).
func BenchmarkTable1Metrics(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2MemoryIntensity regenerates Table 2 (memory intensity of
// all 20 workloads).
func BenchmarkTable2MemoryIntensity(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig1Overheads regenerates Figure 1 (execution time normalized
// to hybrid across all workloads and ABIs).
func BenchmarkFig1Overheads(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2BinarySize regenerates Figure 2 (per-section binary size
// ratios from the linker model).
func BenchmarkFig2BinarySize(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkTable3KeyMetrics regenerates Table 3 (the 12-benchmark metric
// grid across three ABIs).
func BenchmarkTable3KeyMetrics(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4TopDown regenerates Table 4 / Figure 3 (hierarchical
// top-down breakdown for the six selected workloads).
func BenchmarkTable4TopDown(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig4CoreMemBound regenerates Figure 4 (core-bound vs
// memory-bound shares).
func BenchmarkFig4CoreMemBound(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5InstructionMix regenerates Figure 5 (speculative
// instruction-mix distribution per ABI).
func BenchmarkFig5InstructionMix(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6MemoryBound regenerates Figure 6 (memory-bound
// decomposition).
func BenchmarkFig6MemoryBound(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Correlation regenerates Figure 7 (the metric correlation
// matrix, hybrid vs purecap).
func BenchmarkFig7Correlation(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkClaims re-evaluates the §4/§5 headline claims.
func BenchmarkClaims(b *testing.B) { benchExperiment(b, "claims") }

// BenchmarkAblationPredictor runs the §5 capability-aware-predictor
// projection.
func BenchmarkAblationPredictor(b *testing.B) { benchExperiment(b, "ablation-predictor") }

// BenchmarkAblationStoreQueue runs the capability-width store-queue
// projection.
func BenchmarkAblationStoreQueue(b *testing.B) { benchExperiment(b, "ablation-storequeue") }

// BenchmarkAblationCaches runs the doubled-L2/LLC projection.
func BenchmarkAblationCaches(b *testing.B) { benchExperiment(b, "ablation-caches") }

// --- Substrate micro-benchmarks ---

// BenchmarkCapSetBounds measures CHERI Concentrate bounds compression.
func BenchmarkCapSetBounds(b *testing.B) {
	root := cap.Root()
	for i := 0; i < b.N; i++ {
		c, err := root.SetBounds(uint64(i)<<12, 1<<20)
		if err != nil || !c.Valid() {
			b.Fatal("setbounds failed")
		}
	}
}

// BenchmarkCapEncodeDecode measures the 128-bit memory-format round trip.
func BenchmarkCapEncodeDecode(b *testing.B) {
	c := cap.New(0x4000_0000, 1<<16, cap.PermsData)
	for i := 0; i < b.N; i++ {
		enc, tag := c.Encode()
		d := cap.Decode(enc, tag)
		if d.Base() != c.Base() {
			b.Fatal("round trip corrupted")
		}
	}
}

// BenchmarkCacheAccess measures the set-associative cache model on a
// streaming (miss-heavy) pattern — the folded single-pass victim scan.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.L1DConfig)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64)%(1<<21), i%4 == 0)
	}
}

// BenchmarkCacheAccessHot measures the line-reuse pattern every workload's
// inner loops produce — the MRU-way fast path.
func BenchmarkCacheAccessHot(b *testing.B) {
	c := cache.New(cache.L1DConfig)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%4)*8, false)
	}
}

// BenchmarkTLBTranslate measures the two-level TLB with walker on a
// page-per-access sweep (worst case for the translation memo).
func BenchmarkTLBTranslate(b *testing.B) {
	h := tlb.NewHierarchy(tlb.L1DConfig, tlb.New(tlb.L2Config))
	for i := 0; i < b.N; i++ {
		h.Translate(uint64(i) << 12 % (1 << 30))
	}
}

// BenchmarkTLBTranslateHot measures same-page translation runs — the
// last-translation fast path that core.translateD rides.
func BenchmarkTLBTranslateHot(b *testing.B) {
	h := tlb.NewHierarchy(tlb.L1DConfig, tlb.New(tlb.L2Config))
	for i := 0; i < b.N; i++ {
		h.Translate(0x4000_0000 + uint64(i%64)*8)
	}
}

// BenchmarkSessionCachedRun measures the singleflight session's hit path:
// the per-request overhead a cached measurement costs a repeat caller.
func BenchmarkSessionCachedRun(b *testing.B) {
	s := session()
	wl := workloads.All()[0]
	s.Run(wl, abi.Hybrid) // warm the key
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := s.Run(wl, abi.Hybrid); d == nil || d.Err != nil {
			b.Fatal("cached run failed")
		}
	}
}

// BenchmarkPredictor measures the gshare direction predictor.
func BenchmarkPredictor(b *testing.B) {
	p := branch.New()
	for i := 0; i < b.N; i++ {
		p.Resolve(uint64(i%64)<<2, branch.Immed, i%3 == 0, 0, false)
	}
}

// BenchmarkAllocator measures the purecap heap fast path (alloc+free with
// representability rounding).
func BenchmarkAllocator(b *testing.B) {
	h := alloc.New(abi.Purecap, 0x4000_0000, 1<<32)
	for i := 0; i < b.N; i++ {
		a, err := h.Alloc(uint64(64 + i%256))
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineLoadStore measures the full simulated memory path
// (bounds check, TLB, three cache levels, tag memory).
func BenchmarkMachineLoadStore(b *testing.B) {
	m := core.New(abi.Purecap)
	m.Func("bench", 512, 64)
	var p core.Ptr
	err := m.Run(func(m *core.Machine) {
		p = m.Alloc(1 << 20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := core.Ptr(uint64(i*64) % (1 << 20))
			m.Store(p+off, uint64(i), 8)
			m.Load(p+off, 8)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWorkloadOmnetppPurecap measures one full workload execution per
// iteration — the simulator's end-to-end throughput.
func BenchmarkWorkloadOmnetppPurecap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run("520.omnetpp_r", Purecap, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}
