// multicore co-runs workloads on the quad-core Morello SoC's shared
// system-level cache — the multiprogrammed scenario the paper's solo-core
// methodology deliberately avoids — and shows how LLC contention compounds
// the purecap ABI's footprint overhead.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cherisim"
)

func main() {
	names := []string{"520.omnetpp_r", "sqlite", "541.leela_r", "llama-matmul"}

	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "core\tworkload\tabi\tsolo(ms)\tco-run(ms)\tslowdown\tLLC read MR")
	for _, a := range []cherisim.ABI{cherisim.Hybrid, cherisim.Purecap} {
		solo := make([]float64, len(names))
		for i, n := range names {
			r, err := cherisim.Run(n, a, 1)
			if err != nil {
				log.Fatal(err)
			}
			solo[i] = r.Metrics.Seconds
		}
		co, err := cherisim.CoRun(names, a, 1)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range co {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\t%.3f\t%.3fx\t%.1f%%\n",
				i, names[i], a, solo[i]*1e3, r.Metrics.Seconds*1e3,
				r.Metrics.Seconds/solo[i], r.Metrics.LLCReadMR*100)
		}
	}
	tw.Flush()
	fmt.Println("\nFour heterogeneous workloads share the 1 MiB LLC; the cache-sensitive")
	fmt.Println("ones (omnetpp, sqlite) pay for the streaming ones' traffic, and larger")
	fmt.Println("purecap working sets leave less shared capacity for everyone.")
}
