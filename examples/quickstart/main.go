// Quickstart: run one benchmark under the pure-capability ABI and print
// the headline numbers a Morello performance engineer would look at first
// — execution time versus the hybrid baseline, IPC, and the CHERI-specific
// capability-traffic metrics.
package main

import (
	"fmt"
	"log"

	"cherisim"
)

func main() {
	hybrid, err := cherisim.Run("sqlite", cherisim.Hybrid, 1)
	if err != nil {
		log.Fatal(err)
	}
	purecap, err := cherisim.Run("sqlite", cherisim.Purecap, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SQLite speedtest1 on the simulated Morello platform")
	fmt.Printf("  hybrid:  %.4f s  (IPC %.3f)\n", hybrid.Metrics.Seconds, hybrid.Metrics.IPC)
	fmt.Printf("  purecap: %.4f s  (IPC %.3f)\n", purecap.Metrics.Seconds, purecap.Metrics.IPC)
	fmt.Printf("  purecap overhead: %+.1f%%  (paper: +61.2%%)\n",
		(purecap.Metrics.Seconds/hybrid.Metrics.Seconds-1)*100)
	fmt.Println()
	fmt.Printf("  capability load density:  %.1f%% of loads  (paper: 49.7%%)\n",
		purecap.Metrics.CapLoadDensity*100)
	fmt.Printf("  capability traffic share: %.1f%% of memory ops\n",
		purecap.Metrics.CapTrafficShare*100)
	fmt.Printf("  heap footprint: %d B hybrid -> %d B purecap (%+.1f%%)\n",
		hybrid.HeapBytes, purecap.HeapBytes,
		(float64(purecap.HeapBytes)/float64(hybrid.HeapBytes)-1)*100)
}
