// custom-workload shows how to characterize your own program on the
// simulated Morello platform using the execution-context API directly: a
// small hash-join kernel (build a hash table of pointer-linked buckets,
// probe it with a second relation) measured under all three ABIs.
//
// This is the path a downstream user takes to answer "what would CHERI do
// to *my* data structure?" before porting.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cherisim"
	"cherisim/internal/core"
	"cherisim/internal/metrics"
	"cherisim/internal/topdown"
)

// hashJoin is the custom kernel: everything it does — allocation, pointer
// stores, dependent pointer chases, arithmetic, branches — flows through
// the simulated machine, so the per-ABI differences are measured, not
// guessed.
func hashJoin(m *core.Machine) {
	fnBuild := m.Func("build_side", 1024, 96)
	fnProbe := m.Func("probe_side", 1536, 96)

	const buckets = 1 << 12
	const buildRows = 30000
	const probeRows = 60000

	// Bucket entry: {next *Entry, key u64, payload u64}.
	entryL := m.Layout(core.FieldPtr, core.FieldU64, core.FieldU64)
	slot := m.ABI.PointerSize()
	table := m.Alloc(buckets * slot)

	// Build phase.
	m.Call(fnBuild, false)
	seed := uint64(1)
	for i := 0; i < buildRows; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		key := seed % (buildRows * 4)
		b := key % buckets
		e := m.AllocRecord(entryL)
		head := m.LoadPtr(table + core.Ptr(b*slot))
		m.StorePtr(entryL.Field(e, 0), head)
		m.Store(entryL.Field(e, 1), key, 8)
		m.Store(entryL.Field(e, 2), uint64(i), 8)
		m.StorePtr(table+core.Ptr(b*slot), e)
		m.ALU(3) // hash
		m.BranchAt(1, i+1 < buildRows)
	}
	m.Return()

	// Probe phase: dependent chain walks per probe key.
	m.Call(fnProbe, false)
	matches := 0
	for i := 0; i < probeRows; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		key := seed % (buildRows * 4)
		b := key % buckets
		m.ALU(3)
		for e := m.LoadPtr(table + core.Ptr(b*slot)); e != 0; e = m.LoadPtr(entryL.Field(e, 0)) {
			k := m.LoadDep(entryL.Field(e, 1), 8)
			m.ALU(1)
			hit := k == key
			m.BranchAt(2, hit)
			if hit {
				m.Load(entryL.Field(e, 2), 8)
				matches++
				break
			}
		}
		m.BranchAt(3, i+1 < probeRows)
	}
	m.Return()
	_ = matches
}

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "abi\ttime(s)\tvs hybrid\tIPC\tcapLD%\tL2 MR%\tdominant bottleneck")
	var base float64
	for _, a := range []cherisim.ABI{cherisim.Hybrid, cherisim.Benchmark, cherisim.Purecap} {
		m := cherisim.NewMachine(a)
		if err := m.Run(hashJoin); err != nil {
			log.Fatalf("%s: %v", a, err)
		}
		mm := metrics.Compute(&m.C)
		td := topdown.Analyze(&m.C)
		if base == 0 {
			base = mm.Seconds
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.3fx\t%.3f\t%.1f\t%.2f\t%s\n",
			a, mm.Seconds, mm.Seconds/base, mm.IPC,
			mm.CapLoadDensity*100, mm.L2MR*100, td.DominantBottleneck())
	}
	tw.Flush()
	fmt.Println("\nA pointer-chasing hash join: expect purecap overhead from 16-byte")
	fmt.Println("bucket chains (halved L2 residency) plus capability-load serialisation.")
}
