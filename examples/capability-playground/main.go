// capability-playground exercises the CHERI capability model directly:
// bounds compression and representability (why purecap allocators round),
// monotonic derivation, sealing, and the tag-stripping behaviour that
// gives CHERI its pointer integrity.
package main

import (
	"errors"
	"fmt"

	"cherisim/internal/cap"
	"cherisim/internal/mem"
)

func main() {
	fmt.Println("== CHERI Concentrate bounds compression ==")
	for _, length := range []uint64{64, 4096, 1 << 16, 1<<20 + 7, 1 << 30} {
		mask := cap.RepresentableAlignmentMask(length)
		rlen := cap.RepresentableLength(length)
		align := ^mask + 1
		fmt.Printf("  request %10d B -> representable %10d B, base alignment %6d B\n",
			length, rlen, align)
	}

	fmt.Println("\n== Monotonic derivation ==")
	root := cap.Root()
	heap, _ := root.SetBounds(0x4000_0000, 1<<20)
	obj, _ := heap.SetBounds(0x4000_1000, 256)
	fmt.Println("  root:", root)
	fmt.Println("  heap:", heap)
	fmt.Println("  obj: ", obj)
	if _, err := obj.SetBounds(0x4000_0000, 1<<20); errors.Is(err, cap.ErrBoundsViolation) {
		fmt.Println("  widening obj back to the heap bounds: rejected (monotonicity)")
	}

	fmt.Println("\n== Spatial safety ==")
	if err := obj.WithAddress(0x4000_1100).CheckAccess(8, cap.PermLoad); err != nil {
		fmt.Println("  load 0x100 past a 256-byte object:", err)
	}

	fmt.Println("\n== Sealing (object capabilities) ==")
	sealer := cap.New(0, 1<<16, cap.PermsAll).WithAddress(1234)
	sealed, _ := obj.Seal(sealer)
	fmt.Println("  sealed:", sealed)
	if err := sealed.CheckAccess(8, cap.PermLoad); err != nil {
		fmt.Println("  dereferencing a sealed capability:", err)
	}
	unsealed, _ := sealed.Unseal(sealer)
	fmt.Println("  unsealed deref ok:", unsealed.CheckAccess(8, cap.PermLoad) == nil)

	fmt.Println("\n== Tags in memory ==")
	ram := mem.New()
	enc, tag := obj.Encode()
	_ = ram.WriteCap(0x1000, enc, tag)
	_, t, _ := ram.ReadCap(0x1000)
	fmt.Println("  capability stored, tag preserved:", t)
	ram.WriteBytes(0x1004, []byte{0x41}) // one-byte data overwrite
	_, t, _ = ram.ReadCap(0x1000)
	fmt.Println("  after a 1-byte data overwrite, tag:", t, "(forgery prevented)")
}
