// abi-compare reproduces the paper's three-ABI comparison for a
// memory-intensive workload (520.omnetpp_r), with the top-down drill-down
// of §4.4: where do the extra cycles go when 64-bit pointers become
// 128-bit capabilities, and how much does the purecap-benchmark ABI's
// integer-jump workaround recover?
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cherisim"
)

func main() {
	workload := "520.omnetpp_r"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	type row struct {
		abi cherisim.ABI
		res *cherisim.Result
	}
	var rows []row
	for _, a := range []cherisim.ABI{cherisim.Hybrid, cherisim.Benchmark, cherisim.Purecap} {
		res, err := cherisim.Run(workload, a, 1)
		if err != nil {
			log.Fatalf("%s/%s: %v", workload, a, err)
		}
		rows = append(rows, row{a, res})
	}
	base := rows[0].res.Metrics.Seconds

	fmt.Printf("%s under the three CheriBSD ABIs\n\n", workload)
	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "abi\ttime(s)\tvs hybrid\tIPC\tretiring\tfrontend\tbackend\tmem-bound\tcore-bound")
	for _, r := range rows {
		m, td := r.res.Metrics, r.res.Topdown
		fmt.Fprintf(tw, "%s\t%.4f\t%.3fx\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.abi, m.Seconds, m.Seconds/base, m.IPC,
			td.Retiring, td.FrontendBound, td.BackendBound, td.MemoryBound, td.CoreBound)
	}
	tw.Flush()

	pure := rows[2].res.Metrics.Seconds / base
	bench := rows[1].res.Metrics.Seconds / base
	if pure > 1 {
		fmt.Printf("\nbenchmark ABI recovers %.0f%% of the purecap overhead ", (pure-bench)/(pure-1)*100)
		fmt.Println("(the PCC-bounds branch-predictor cost, §4.5)")
	}
}
